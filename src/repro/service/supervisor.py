"""The supervisor: leases jobs to runner processes and survives them.

One daemon thread ticks over three duties, all under the service lock:

* **Reap** — collect exited runners.  Exit 0 with a result artifact on
  disk is a completion; exit 130 during drain parks the job back in
  ``queued`` (its checkpoint holds the progress) for the *next* daemon;
  anything else is a crash, requeued up to ``max_attempts`` service
  attempts and then failed with the runner's parked diagnostic.
* **Watch heartbeats** — a lease whose heartbeat file stops advancing
  for a TTL is expired: the runner is SIGKILLed and the next reap
  requeues the job (resume from checkpoint makes a stale kill safe).
* **Fill slots** — while below ``max_runners`` and not draining, pull
  the scheduler's next fair-share pick and grant it a lease.  The grant
  order is the crash-safety choreography: *persist* the ``leased``
  record (with the daemon's epoch) first, journal it, and only then
  spawn — a kill at any instant between leaves a record whose dead
  epoch recovery requeues, never a lost or double-run job.

A cache check guards every grant: if the spec's result artifact already
exists (committed by a runner the previous daemon never got to reap),
the job completes on the spot with zero compute.
"""

from __future__ import annotations

import subprocess
import sys
import threading
import time
from typing import Callable, Dict, Optional

from ..testing.chaos import service_chaos
from .jobs import JobRecord
from .leases import LeaseTable
from .pressure import DiskPressureWatchdog
from .scheduler import FairShareScheduler, QueueEntry
from .store import JobResult, JobStore

__all__ = ["Supervisor"]


class Supervisor:
    """Process supervision for one daemon epoch."""

    def __init__(self, store: JobStore, scheduler: FairShareScheduler,
                 emit: Callable[..., None], metrics, lock: threading.RLock,
                 *, epoch: str, max_runners: int = 2,
                 lease_ttl_s: float = 30.0, max_attempts: int = 3,
                 poll_interval_s: float = 0.05,
                 clock: Callable[[], float] = time.monotonic,
                 watchdog: Optional[DiskPressureWatchdog] = None):
        self._store = store
        self._scheduler = scheduler
        self._emit = emit
        self._metrics = metrics
        self._lock = lock
        self.epoch = epoch
        self.max_runners = int(max_runners)
        self.max_attempts = int(max_attempts)
        self.poll_interval_s = float(poll_interval_s)
        self.draining = False
        self.watchdog = watchdog
        self._announced_mode = "nominal"
        self._leases = LeaseTable(epoch, ttl_s=lease_ttl_s, clock=clock)
        self._runners: Dict[str, subprocess.Popen] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(target=self._loop,
                                        name="service-supervisor",
                                        daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.tick()
            self._stop.wait(self.poll_interval_s)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def tick(self) -> None:
        with self._lock:
            self._watch_pressure()
            self._reap()
            self._watch_heartbeats()
            self._fill_slots()
            self._metrics.gauge("service.queue_depth").set(
                self._scheduler.depth())
            self._metrics.gauge("service.running").set(len(self._runners))

    # -- disk pressure (DESIGN §15 degradation ladder) --------------------

    @property
    def pressure_mode(self) -> str:
        return "nominal" if self.watchdog is None else self.watchdog.mode

    def _watch_pressure(self) -> None:
        """Poll the watchdog; journal transitions; act on escalation.

        Entering ``minimal`` drains in-flight runners exactly like a
        graceful shutdown — SIGTERM, checkpoint flush, exit 130, job
        parked back in ``queued`` — so the disk's last headroom goes to
        completing durable state, not to half-written results.
        """
        if self.watchdog is None:
            return
        mode = self.watchdog.poll()
        self._metrics.gauge("service.disk_free_bytes").set(
            self.watchdog.free_bytes or 0)
        self._metrics.gauge("service.pressure_level").set(
            self.watchdog.level)
        if mode == self._announced_mode:
            return
        previous, self._announced_mode = self._announced_mode, mode
        self._emit("service.pressure", mode=mode, previous=previous,
                   free_bytes=self.watchdog.free_bytes)
        self._metrics.counter("service.pressure_transitions").inc()
        if mode == "minimal":
            for proc in self._runners.values():
                if proc.poll() is None:
                    proc.terminate()

    # -- recovery (before the loop starts) --------------------------------

    def recover(self) -> Dict[str, int]:
        """Fold the spool's job records back into live state after boot.

        Queued jobs re-enter the queue in their original admission
        order; leased/running records hold leases from a dead epoch and
        are either completed from a cached result (the runner finished,
        the old daemon never noticed) or requeued to resume from their
        checkpoint.  Terminal records are left alone.
        """
        counts = {"queued": 0, "requeued": 0, "completed": 0}
        with self._lock:
            for record in self._store.iter_jobs():
                if record.state == "queued":
                    self._enqueue(record, force=True)
                    counts["queued"] += 1
                elif record.state in ("leased", "running"):
                    if self._store.has_result(record.spec_digest):
                        result = self._store.load_result(record.spec_digest)
                        self._complete(record, result, cached=True)
                        counts["completed"] += 1
                    else:
                        record = record.advanced("queued", lease=None)
                        self._store.save_job(record)
                        self._emit("job.requeued", job_id=record.job_id,
                                   tenant=record.tenant, reason="recovery",
                                   attempts=record.attempts)
                        self._metrics.counter("service.requeued").inc()
                        self._enqueue(record, force=True)
                        counts["requeued"] += 1
        return counts

    # -- queue plumbing ---------------------------------------------------

    def _enqueue(self, record: JobRecord, *, force: bool = False) -> None:
        self._scheduler.submit(
            QueueEntry(job_id=record.job_id, tenant=record.tenant,
                       priority=record.priority,
                       submit_seq=record.submit_seq),
            force=force)

    # -- reaping ----------------------------------------------------------

    def _reap(self) -> None:
        for job_id, proc in list(self._runners.items()):
            returncode = proc.poll()
            if returncode is None:
                continue
            del self._runners[job_id]
            self._leases.release(job_id)
            record = self._store.load_job(job_id)
            if record.state == "cancelled":
                self._store.clear_runner_state(job_id)
                continue
            if returncode == 0 \
                    and self._store.has_result(record.spec_digest):
                result = self._store.load_result(record.spec_digest)
                self._complete(record, result, cached=False)
            elif returncode == 130 and (self.draining
                                        or self.pressure_mode == "minimal"):
                # Graceful drain (shutdown or minimal-mode disk
                # pressure): the checkpoint holds the progress; park the
                # job until the next daemon — or the next nominal mode.
                record = record.advanced("queued", lease=None)
                self._store.save_job(record)
                self._emit("job.requeued", job_id=job_id,
                           tenant=record.tenant,
                           reason=("drain" if self.draining
                                   else "disk-pressure"),
                           attempts=record.attempts)
                if not self.draining:
                    self._enqueue(record, force=True)
            else:
                self._handle_crash(record, returncode)

    def _handle_crash(self, record: JobRecord, returncode: int) -> None:
        if record.attempts >= self.max_attempts:
            error = (self._store.read_job_error(record.job_id)
                     or f"runner exited with status {returncode}")
            record = record.advanced("failed", lease=None, error=error)
            self._store.save_job(record)
            self._emit("job.failed", job_id=record.job_id,
                       tenant=record.tenant, attempts=record.attempts,
                       returncode=returncode, error=error)
            self._metrics.counter("service.failed").inc()
            return
        record = record.advanced("queued", lease=None)
        self._store.save_job(record)
        self._emit("job.requeued", job_id=record.job_id,
                   tenant=record.tenant, reason="crash",
                   returncode=returncode, attempts=record.attempts)
        self._metrics.counter("service.requeued").inc()
        if not self.draining:
            self._enqueue(record, force=True)

    def _complete(self, record: JobRecord, result: JobResult, *,
                  cached: bool) -> None:
        record = record.advanced("done", lease=None, error=None,
                                 chunks_resumed=result.chunks_resumed)
        self._store.save_job(record)
        self._store.clear_runner_state(record.job_id)
        self._emit("job.completed", job_id=record.job_id,
                   tenant=record.tenant, cached=cached,
                   attempts=record.attempts,
                   chunks_resumed=result.chunks_resumed,
                   spec_digest=record.spec_digest)
        self._metrics.counter("service.completed").inc()
        if cached:
            self._metrics.counter("service.cache_hits").inc()

    # -- heartbeats -------------------------------------------------------

    def _watch_heartbeats(self) -> None:
        for job_id in self._leases.live_jobs():
            self._leases.observe_beat(job_id,
                                      self._store.read_beat(job_id))
            if self._leases.expired(job_id):
                proc = self._runners.get(job_id)
                if proc is not None and proc.poll() is None:
                    proc.kill()  # the next reap requeues from checkpoint

    # -- granting ---------------------------------------------------------

    def _fill_slots(self) -> None:
        while not self.draining and self.pressure_mode == "nominal" \
                and len(self._runners) < self.max_runners:
            entry = self._scheduler.next_job()
            if entry is None:
                return
            self._grant(entry)

    def _grant(self, entry: QueueEntry) -> None:
        record = self._store.load_job(entry.job_id)
        if record.state != "queued":
            return  # cancelled (or otherwise moved on) while queued
        if self._store.has_result(record.spec_digest):
            result = self._store.load_result(record.spec_digest)
            self._complete(record, result, cached=True)
            return
        lease = self._leases.grant(record.job_id, pid=0)
        record = record.advanced("leased", lease=lease,
                                 attempts=record.attempts + 1)
        self._store.save_job(record)
        self._emit("job.leased", job_id=record.job_id,
                   tenant=record.tenant, attempt=record.attempts,
                   lease_id=lease.lease_id, epoch=lease.epoch)
        service_chaos("lease-grant")
        proc = self._spawn(record)
        self._runners[record.job_id] = proc
        record = record.advanced(
            "running",
            lease=type(lease)(lease_id=lease.lease_id, epoch=lease.epoch,
                              pid=proc.pid, ttl_s=lease.ttl_s))
        self._store.save_job(record)

    def _spawn(self, record: JobRecord) -> subprocess.Popen:
        log = open(self._store.log_path(record.job_id), "ab")
        try:
            return subprocess.Popen(
                [sys.executable, "-m", "repro.service.runner",
                 str(self._store.root), record.job_id],
                stdin=subprocess.DEVNULL, stdout=log, stderr=log)
        finally:
            log.close()

    # -- drain + hard teardown --------------------------------------------

    def interrupt_runner(self, job_id: str) -> None:
        """SIGTERM one runner (cancellation of a running job)."""
        proc = self._runners.get(job_id)
        if proc is not None and proc.poll() is None:
            proc.terminate()

    def drain(self, timeout_s: float = 30.0) -> None:
        """Stop granting, interrupt every runner, reap them all.

        Runners flush their checkpoints on SIGTERM and exit 130; the
        reap path parks their jobs in ``queued`` so a restarted daemon
        resumes without re-simulating a single committed chunk.
        """
        with self._lock:
            self.draining = True
            for proc in self._runners.values():
                if proc.poll() is None:
                    proc.terminate()
        deadline = time.monotonic() + timeout_s
        while True:
            with self._lock:
                self._reap()
                if not self._runners:
                    return
                if time.monotonic() > deadline:
                    for proc in self._runners.values():
                        if proc.poll() is None:
                            proc.kill()
            time.sleep(0.05)

    def running_jobs(self) -> Dict[str, int]:
        with self._lock:
            return {job_id: proc.pid
                    for job_id, proc in self._runners.items()}
