"""Injury-severity risk curves: P(severity | collision Δv).

The QRN's contribution splits — "it has been determined 70 % of f_I2 will
contribute to v_S1 and 30 % to v_S2" (Sec. III-B) — must come from injury
statistics in a real programme (the paper points at national traffic
databases).  This substrate provides the parametric stand-in: logistic
dose–response curves for the probability that a collision at impact speed
Δv produces an injury at or above each severity level, per actor pairing.

The logistic family matches the published shape of pedestrian-injury risk
curves (risk rises steeply through a characteristic speed band), and the
default parameters place the steep rise for VRUs around 10 km/h-scale
thresholds precisely so the paper's "two incident types for collision
speeds below or above 10 km/h may be appropriate if the likelihood of
severe injuries rises quickly above this limit" can be exercised and
swept.  All numbers are synthetic (paper footnote 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from ..core.severity import UnifiedSeverity
from ..core.taxonomy import ActorClass

__all__ = [
    "LogisticCurve",
    "InjuryRiskModel",
    "default_risk_model",
    "severity_distribution",
]


@dataclass(frozen=True)
class LogisticCurve:
    """``P(x) = 1 / (1 + exp(-(x - midpoint) / scale))`` on Δv in km/h.

    ``midpoint`` is the speed at 50 % risk; ``scale`` the spread (smaller
    = steeper).  Monotone non-decreasing in Δv, which tests assert.
    """

    midpoint_kmh: float
    scale_kmh: float

    def __post_init__(self) -> None:
        if self.scale_kmh <= 0:
            raise ValueError("scale must be positive")

    def __call__(self, delta_v_kmh: float) -> float:
        if delta_v_kmh < 0:
            raise ValueError("delta_v must be >= 0")
        z = (delta_v_kmh - self.midpoint_kmh) / self.scale_kmh
        # Clamp to avoid overflow for extreme arguments.
        if z < -60.0:
            return 0.0
        if z > 60.0:
            return 1.0
        return 1.0 / (1.0 + math.exp(-z))

    def speed_at_risk(self, probability: float) -> float:
        """Inverse: Δv at which the curve reaches ``probability``.

        Clamped at 0 (the curve may already exceed ``probability`` at
        standstill for aggressive parameters).
        """
        if not (0.0 < probability < 1.0):
            raise ValueError("probability must be in (0, 1)")
        return max(0.0, self.midpoint_kmh
                   + self.scale_kmh * math.log(probability / (1.0 - probability)))


# The injury ladder, least to most severe, used for exceedance curves.
_INJURY_LEVELS: Tuple[UnifiedSeverity, ...] = (
    UnifiedSeverity.LIGHT_INJURY,
    UnifiedSeverity.SEVERE_INJURY,
    UnifiedSeverity.LIFE_THREATENING,
)


class InjuryRiskModel:
    """Per-counterpart exceedance curves P(injury ≥ level | Δv).

    For each counterpart actor class, three stochastically ordered
    logistic curves (light ≤ severe ≤ fatal midpoints) give the
    probability a collision at Δv causes an injury at least that severe.
    Ordering is validated: an exceedance family must be monotone in the
    severity level at every speed.
    """

    def __init__(self, curves: Mapping[ActorClass,
                                       Mapping[UnifiedSeverity, LogisticCurve]]):
        if not curves:
            raise ValueError("risk model needs at least one counterpart")
        self._curves: Dict[ActorClass, Dict[UnifiedSeverity, LogisticCurve]] = {}
        for counterpart, family in curves.items():
            missing = set(_INJURY_LEVELS) - set(family)
            if missing:
                raise ValueError(
                    f"{counterpart}: curves missing for {sorted(m.name for m in missing)}")
            for probe in (1.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0):
                values = [family[level](probe) for level in _INJURY_LEVELS]
                if not all(a >= b - 1e-12 for a, b in zip(values, values[1:])):
                    raise ValueError(
                        f"{counterpart}: exceedance curves not ordered at "
                        f"Δv={probe} km/h (got {values})")
            self._curves[counterpart] = dict(family)

    @property
    def counterparts(self) -> Tuple[ActorClass, ...]:
        return tuple(self._curves)

    def exceedance(self, counterpart: ActorClass, level: UnifiedSeverity,
                   delta_v_kmh: float) -> float:
        """P(injury at least ``level`` | collision with ``counterpart`` at Δv)."""
        family = self._family(counterpart)
        if level not in family:
            raise KeyError(f"{level.name} is not an injury level")
        return family[level](delta_v_kmh)

    def severity_probabilities(self, counterpart: ActorClass,
                               delta_v_kmh: float) -> Dict[UnifiedSeverity, float]:
        """Exact-level probabilities, including MATERIAL_DAMAGE as remainder.

        Differences of the exceedance ladder: P(exactly light) =
        P(≥light) − P(≥severe), etc.; whatever probability is left below
        'light' is a damage-only outcome.
        """
        family = self._family(counterpart)
        at_least = {level: family[level](delta_v_kmh) for level in _INJURY_LEVELS}
        exact: Dict[UnifiedSeverity, float] = {}
        exact[UnifiedSeverity.MATERIAL_DAMAGE] = max(
            0.0, 1.0 - at_least[UnifiedSeverity.LIGHT_INJURY])
        exact[UnifiedSeverity.LIGHT_INJURY] = max(
            0.0, at_least[UnifiedSeverity.LIGHT_INJURY]
            - at_least[UnifiedSeverity.SEVERE_INJURY])
        exact[UnifiedSeverity.SEVERE_INJURY] = max(
            0.0, at_least[UnifiedSeverity.SEVERE_INJURY]
            - at_least[UnifiedSeverity.LIFE_THREATENING])
        exact[UnifiedSeverity.LIFE_THREATENING] = at_least[
            UnifiedSeverity.LIFE_THREATENING]
        return exact

    def natural_band_boundary(self, counterpart: ActorClass,
                              level: UnifiedSeverity,
                              risk_threshold: float = 0.5) -> float:
        """The Δv where P(≥ level) crosses ``risk_threshold``.

        This is the paper's 10 km/h argument operationalised: a speed-band
        boundary between incident types is well-chosen where the severe-
        injury risk "rises quickly above this limit".
        """
        family = self._family(counterpart)
        if level not in family:
            raise KeyError(f"{level.name} is not an injury level")
        return family[level].speed_at_risk(risk_threshold)

    def _family(self, counterpart: ActorClass) -> Dict[UnifiedSeverity, LogisticCurve]:
        try:
            return self._curves[counterpart]
        except KeyError:
            raise KeyError(
                f"no curves for counterpart {counterpart}; "
                f"known: {[c.value for c in self._curves]}") from None


def default_risk_model() -> InjuryRiskModel:
    """Synthetic curves shaped like the published literature.

    VRUs are unprotected: risk rises at far lower Δv than for car
    occupants; trucks protect their occupants but their collision partners
    follow the car curves of the *other* party — here curves are from the
    ego's collision-partner perspective (who gets hurt in an Ego↔X crash,
    taking the worst-off party).  Animals and static objects threaten only
    the ego occupants, so their curves sit near the car occupant family.
    """
    vru = {
        UnifiedSeverity.LIGHT_INJURY: LogisticCurve(8.0, 3.0),
        UnifiedSeverity.SEVERE_INJURY: LogisticCurve(25.0, 7.0),
        UnifiedSeverity.LIFE_THREATENING: LogisticCurve(50.0, 9.0),
    }
    car = {
        UnifiedSeverity.LIGHT_INJURY: LogisticCurve(20.0, 6.0),
        UnifiedSeverity.SEVERE_INJURY: LogisticCurve(55.0, 10.0),
        UnifiedSeverity.LIFE_THREATENING: LogisticCurve(85.0, 12.0),
    }
    truck = {
        UnifiedSeverity.LIGHT_INJURY: LogisticCurve(15.0, 5.0),
        UnifiedSeverity.SEVERE_INJURY: LogisticCurve(45.0, 9.0),
        UnifiedSeverity.LIFE_THREATENING: LogisticCurve(70.0, 11.0),
    }
    occupant_only = {
        UnifiedSeverity.LIGHT_INJURY: LogisticCurve(30.0, 8.0),
        UnifiedSeverity.SEVERE_INJURY: LogisticCurve(70.0, 12.0),
        UnifiedSeverity.LIFE_THREATENING: LogisticCurve(100.0, 14.0),
    }
    return InjuryRiskModel({
        ActorClass.VRU: vru,
        ActorClass.CAR: car,
        ActorClass.TRUCK: truck,
        ActorClass.ANIMAL: occupant_only,
        ActorClass.STATIC_OBJECT: occupant_only,
        ActorClass.OTHER: car,
    })


def severity_distribution(model: InjuryRiskModel, counterpart: ActorClass,
                          delta_v_samples: Sequence[float],
                          ) -> Dict[UnifiedSeverity, float]:
    """Average exact-level probabilities over a sample of impact speeds.

    Given Δv samples for one incident type (e.g. from simulation, or a
    band midpoint grid), returns the empirical severity distribution —
    the raw material of a :class:`~repro.core.incident.ContributionSplit`.
    """
    if not delta_v_samples:
        raise ValueError("need at least one delta_v sample")
    totals = {level: 0.0 for level in (UnifiedSeverity.MATERIAL_DAMAGE,
                                       *_INJURY_LEVELS)}
    for delta_v in delta_v_samples:
        for level, probability in model.severity_probabilities(
                counterpart, delta_v).items():
            totals[level] += probability
    n = len(delta_v_samples)
    return {level: total / n for level, total in totals.items()}
