"""Fitting risk curves from observed collision outcomes.

The default risk model ships synthetic curves; a real programme fits them
from data — national statistics or (here) simulated outcomes.  This
module closes that loop: maximum-likelihood logistic regression of
exceedance outcomes on collision Δv, returning the same
:class:`~repro.injury.risk_curves.LogisticCurve` objects the rest of the
library consumes, so a fitted model is a drop-in replacement for the
synthetic one.

The fit is deliberately the textbook one (Bernoulli likelihood, two
parameters, L-BFGS on the negative log-likelihood) — auditability beats
sophistication in a safety-case input.  :func:`fit_exceedance_curve`
fits one severity level; :func:`fit_risk_model` fits a full ordered
family and enforces the stochastic-ordering constraint the
:class:`~repro.injury.risk_curves.InjuryRiskModel` constructor demands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize

from ..core.severity import UnifiedSeverity
from ..core.taxonomy import ActorClass
from .risk_curves import InjuryRiskModel, LogisticCurve

__all__ = ["FitResult", "fit_exceedance_curve", "fit_risk_model",
           "sample_outcomes"]

_INJURY_LEVELS = (UnifiedSeverity.LIGHT_INJURY, UnifiedSeverity.SEVERE_INJURY,
                  UnifiedSeverity.LIFE_THREATENING)


@dataclass(frozen=True)
class FitResult:
    """One fitted exceedance curve with its fit diagnostics."""

    curve: LogisticCurve
    log_likelihood: float
    n_observations: int
    n_exceedances: int

    def mean_log_likelihood(self) -> float:
        return self.log_likelihood / self.n_observations


def _negative_log_likelihood(params: np.ndarray, speeds: np.ndarray,
                             outcomes: np.ndarray) -> float:
    midpoint, log_scale = params
    scale = math.exp(log_scale)
    z = (speeds - midpoint) / scale
    # log(sigmoid(z)) and log(1 - sigmoid(z)), computed stably.
    log_p = -np.logaddexp(0.0, -z)
    log_q = -np.logaddexp(0.0, z)
    return -float(np.sum(outcomes * log_p + (1.0 - outcomes) * log_q))


def fit_exceedance_curve(speeds: Sequence[float],
                         exceeded: Sequence[bool],
                         *, initial_midpoint: Optional[float] = None,
                         ) -> FitResult:
    """MLE logistic fit of P(injury ≥ level | Δv).

    ``speeds`` are collision Δv values; ``exceeded`` whether the outcome
    reached the severity level.  Needs both outcome kinds present — a
    dataset with only exceedances (or none) cannot identify a curve, and
    silently extrapolating one would be a safety-case defect.
    """
    speed_arr = np.asarray(list(speeds), dtype=float)
    outcome_arr = np.asarray([1.0 if flag else 0.0 for flag in exceeded])
    if speed_arr.shape != outcome_arr.shape or speed_arr.ndim != 1:
        raise ValueError("speeds and exceeded must be equal-length 1-D")
    if len(speed_arr) < 10:
        raise ValueError(
            f"need at least 10 observations to fit, got {len(speed_arr)}")
    if np.any(speed_arr < 0):
        raise ValueError("speeds must be >= 0")
    positives = int(outcome_arr.sum())
    if positives == 0 or positives == len(outcome_arr):
        raise ValueError(
            "cannot identify a curve from single-class outcomes "
            f"({positives}/{len(outcome_arr)} exceedances)")
    start_mid = (initial_midpoint if initial_midpoint is not None
                 else float(np.median(speed_arr)))
    start = np.array([start_mid, math.log(max(np.std(speed_arr), 1.0))])
    result = minimize(_negative_log_likelihood, start,
                      args=(speed_arr, outcome_arr), method="L-BFGS-B")
    if not result.success:  # pragma: no cover - optimizer rarely fails here
        raise RuntimeError(f"curve fit failed: {result.message}")
    midpoint, log_scale = result.x
    return FitResult(
        curve=LogisticCurve(float(midpoint), float(math.exp(log_scale))),
        log_likelihood=-float(result.fun),
        n_observations=len(speed_arr),
        n_exceedances=positives,
    )


def fit_risk_model(observations: Mapping[ActorClass,
                                         Sequence[Tuple[float, UnifiedSeverity]]],
                   ) -> InjuryRiskModel:
    """Fit a full risk model from (Δv, realised severity) observations.

    For each counterpart and each injury level, the exceedance indicator
    is "realised severity ≥ level"; three curves are fitted per
    counterpart.  The model constructor then re-validates stochastic
    ordering — a dataset too thin or too noisy to produce ordered curves
    fails loudly rather than yielding an incoherent model.
    """
    if not observations:
        raise ValueError("need observations for at least one counterpart")
    curves: Dict[ActorClass, Dict[UnifiedSeverity, LogisticCurve]] = {}
    for counterpart, rows in observations.items():
        if not rows:
            raise ValueError(f"no observations for {counterpart}")
        speeds = [dv for dv, _ in rows]
        severities = [severity for _, severity in rows]
        family: Dict[UnifiedSeverity, LogisticCurve] = {}
        for level in _INJURY_LEVELS:
            exceeded = [severity >= level for severity in severities]
            family[level] = fit_exceedance_curve(speeds, exceeded).curve
        curves[counterpart] = family
    return InjuryRiskModel(curves)


def sample_outcomes(model: InjuryRiskModel, counterpart: ActorClass,
                    speeds: Sequence[float], rng: np.random.Generator,
                    ) -> List[Tuple[float, UnifiedSeverity]]:
    """Draw realised severities at given Δv values — synthetic 'accident
    statistics' for calibration round-trip tests and demos."""
    rows: List[Tuple[float, UnifiedSeverity]] = []
    for dv in speeds:
        distribution = model.severity_probabilities(counterpart, float(dv))
        levels = list(distribution)
        weights = np.array([distribution[level] for level in levels])
        weights = weights / weights.sum()
        chosen = levels[int(rng.choice(len(levels), p=weights))]
        rows.append((float(dv), chosen))
    return rows
