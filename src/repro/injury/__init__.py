"""Injury-severity substrate: risk curves and consequence classification.

Stands in for the accident statistics (e.g. national traffic databases)
the paper assumes when assigning incident types to consequence classes:
logistic severity-vs-Δv dose–response curves per counterpart
(:mod:`.risk_curves`) and the derivation of contribution splits and
per-incident consequence draws from them (:mod:`.classifier`).
"""

from .calibration import (FitResult, fit_exceedance_curve,
                          fit_risk_model, sample_outcomes)
from .classifier import (classify_record_severity, derive_splits,
                         sample_consequence_class, split_for_proximity,
                         split_for_speed_band)
from .risk_curves import (InjuryRiskModel, LogisticCurve, default_risk_model,
                          severity_distribution)

__all__ = [
    "LogisticCurve",
    "InjuryRiskModel",
    "default_risk_model",
    "severity_distribution",
    "split_for_speed_band",
    "split_for_proximity",
    "derive_splits",
    "classify_record_severity",
    "sample_consequence_class",
    "FitResult",
    "fit_exceedance_curve",
    "fit_risk_model",
    "sample_outcomes",
]
