"""Deriving contribution splits and consequence classes from risk curves.

Bridges the injury substrate to the QRN core: given an incident type's
tolerance margin and a risk model, compute the
:class:`~repro.core.incident.ContributionSplit` a real programme would read
out of accident statistics, and classify individual simulated incidents
into consequence classes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..core.consequence import ConsequenceScale
from ..core.incident import (ContributionSplit, IncidentRecord, IncidentType,
                             ProximityMargin, SpeedBand)
from ..core.severity import UnifiedSeverity
from ..core.taxonomy import ActorClass
from .risk_curves import InjuryRiskModel, severity_distribution

__all__ = [
    "split_for_speed_band",
    "split_for_proximity",
    "derive_splits",
    "classify_record_severity",
    "sample_consequence_class",
]

_MIN_FRACTION = 1e-9
"""Severity fractions below this are dropped from splits as numerical noise."""


def _severity_to_class(scale: ConsequenceScale,
                       severity: UnifiedSeverity) -> Optional[str]:
    """The consequence class at a severity level, if the scale has one."""
    matches = scale.by_severity(severity)
    if not matches:
        return None
    if len(matches) > 1:
        raise ValueError(
            f"scale has {len(matches)} classes at severity {severity.name}; "
            "split derivation needs a unique class per severity")
    return matches[0].class_id


def split_for_speed_band(model: InjuryRiskModel, counterpart: ActorClass,
                         band: SpeedBand, scale: ConsequenceScale,
                         *, samples: int = 50) -> ContributionSplit:
    """Contribution split for a collision incident type.

    Averages the exact-severity distribution over a uniform Δv grid across
    the band (a real derivation would weight by the observed Δv density;
    uniform is the assumption-light default and the difference is a
    sensitivity-sweep away).  Severity mass landing on levels the scale
    does not model is dropped — the split's total may then be below 1,
    which :class:`ContributionSplit` permits by design.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    grid = np.linspace(band.low_kmh, band.high_kmh, samples + 1)[1:]
    distribution = severity_distribution(model, counterpart, [float(v) for v in grid])
    fractions: Dict[str, float] = {}
    for severity, mass in distribution.items():
        if mass <= _MIN_FRACTION:
            continue
        class_id = _severity_to_class(scale, severity)
        if class_id is not None:
            fractions[class_id] = fractions.get(class_id, 0.0) + mass
    if not fractions:
        raise ValueError(
            f"no modelled consequence class receives mass for {band.describe()} "
            f"vs {counterpart}; widen the scale or the band")
    return ContributionSplit(fractions)


def split_for_proximity(margin: ProximityMargin, scale: ConsequenceScale,
                        *, scare_fraction: float = 0.8,
                        evasive_fraction: float = 0.2) -> ContributionSplit:
    """Contribution split for a quality (near-miss) incident type.

    Near-misses produce no injuries; their consequences are perceived-
    safety degradation and induced emergency manoeuvres.  The split
    between those two is a behavioural parameter, not physics — defaults
    follow the paper's Fig. 5 shading for I₁.
    """
    if scare_fraction < 0 or evasive_fraction < 0:
        raise ValueError("fractions must be >= 0")
    if scare_fraction + evasive_fraction > 1.0 + 1e-9:
        raise ValueError("near-miss fractions must sum to <= 1")
    fractions: Dict[str, float] = {}
    scare_class = _severity_to_class(scale, UnifiedSeverity.PERCEIVED_SAFETY)
    evasive_class = _severity_to_class(scale, UnifiedSeverity.EMERGENCY_MANOEUVRE)
    if scare_class is not None and scare_fraction > 0:
        fractions[scare_class] = scare_fraction
    if evasive_class is not None and evasive_fraction > 0:
        fractions[evasive_class] = evasive_fraction
    if not fractions:
        raise ValueError("scale models neither near-miss consequence level")
    return ContributionSplit(fractions)


def derive_splits(types: Sequence[IncidentType], model: InjuryRiskModel,
                  scale: ConsequenceScale,
                  *, samples: int = 50) -> Dict[str, ContributionSplit]:
    """Data-grounded splits for a whole incident-type set.

    Returns a mapping ``type_id -> split`` computed from the risk model,
    replacing whatever expert-judged splits the types carried.  Callers
    rebuild the types with these splits (types are frozen).
    """
    splits: Dict[str, ContributionSplit] = {}
    for itype in types:
        if isinstance(itype.margin, SpeedBand):
            splits[itype.type_id] = split_for_speed_band(
                model, itype.counterpart, itype.margin, scale, samples=samples)
        else:
            splits[itype.type_id] = split_for_proximity(itype.margin, scale)
    return splits


def classify_record_severity(record: IncidentRecord, model: InjuryRiskModel,
                             rng: np.random.Generator) -> UnifiedSeverity:
    """Draw the realised severity of one simulated incident.

    Collisions draw from the exact-severity distribution at the record's
    Δv; near-misses are perceived-safety events with a 20 % chance of
    having forced an emergency manoeuvre (matching
    :func:`split_for_proximity` defaults).
    """
    if record.is_collision:
        distribution = model.severity_probabilities(record.counterpart,
                                                    record.delta_v_kmh)
        levels = list(distribution)
        weights = np.array([distribution[level] for level in levels], dtype=float)
        total = weights.sum()
        if total <= 0:
            return UnifiedSeverity.MATERIAL_DAMAGE
        weights /= total
        return levels[int(rng.choice(len(levels), p=weights))]
    if rng.uniform() < 0.2:
        return UnifiedSeverity.EMERGENCY_MANOEUVRE
    return UnifiedSeverity.PERCEIVED_SAFETY


def sample_consequence_class(record: IncidentRecord, model: InjuryRiskModel,
                             scale: ConsequenceScale,
                             rng: np.random.Generator) -> Optional[str]:
    """Realised consequence class of one incident, or None if below scale.

    The end-to-end path used by the simulator's class-count verification:
    incident → severity draw → consequence class (if the scale models that
    severity).
    """
    severity = classify_record_severity(record, model, rng)
    return _severity_to_class(scale, severity)
