"""Iterative predetermined HARA — the related-work baseline of [12].

The paper's related work (Sec. VI) discusses Warg et al. 2016: "an
iterative approach to predetermined hazard analysis ... combinations from
situation and hazard classification trees are used to elicit HEs,
followed by function refinement to redefine the scope of the function if
the realization task is determined to be too difficult.  This is repeated
until a stable set of HEs is obtained.  However, this method does not
effectively address the problem of completeness of situations."

This module implements that loop so the QRN can be compared against it:

1. run the conventional HARA over the current situation catalog;
2. ask a difficulty assessor which hazardous events are too hard to
   realise at their assigned ASIL;
3. if none — stable, stop; otherwise *refine the function* by restricting
   the catalog (dropping the situation value most implicated in the hard
   events) and repeat.

The result records what the iteration costs: every round shrinks the
feature's scope (coverage of the original operating demand), and the
final completeness claim still rests on the situation catalog being
exhaustive — the two structural criticisms the paper levels at
predetermined approaches.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .hara import HaraStudy, RatingModel, run_hara
from .hazard import VehicleFunction
from .hazardous_event import HazardousEvent
from .situation import SituationCatalog

__all__ = ["IterationRound", "IterativeHaraResult", "run_iterative_hara",
           "asil_threshold_assessor"]


DifficultyAssessor = Callable[[HazardousEvent], bool]
"""Returns True when realising the mitigation for this HE is too hard."""


def asil_threshold_assessor(threshold) -> DifficultyAssessor:
    """Too hard iff the HE's ASIL is at or above ``threshold``.

    The common proxy: the team cannot (affordably) realise requirements
    above a certain integrity level with the chosen architecture.
    """

    def assess(event: HazardousEvent) -> bool:
        return event.asil >= threshold

    return assess


@dataclass(frozen=True)
class IterationRound:
    """Bookkeeping for one elicit-assess-refine round."""

    round_index: int
    situations: int
    hazardous_events: int
    too_hard: int
    restriction: Optional[Tuple[str, str]]
    """(dimension, dropped value) applied after this round, if any."""
    coverage: float
    """Share of the original operating demand still inside scope."""


@dataclass(frozen=True)
class IterativeHaraResult:
    """Outcome of the iterative loop."""

    rounds: Tuple[IterationRound, ...]
    final_study: HaraStudy
    final_catalog: SituationCatalog
    converged: bool
    final_coverage: float

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def scope_cost(self) -> float:
        """Fraction of the original operating demand refined away."""
        return 1.0 - self.final_coverage

    def summary(self) -> str:
        lines = [f"Iterative HARA: {self.n_rounds} round(s), "
                 f"{'converged' if self.converged else 'DID NOT CONVERGE'}"]
        for r in self.rounds:
            restriction = (f"drop {r.restriction[0]}={r.restriction[1]}"
                           if r.restriction else "stable")
            lines.append(
                f"  round {r.round_index}: {r.situations} situations, "
                f"{r.hazardous_events} HEs, {r.too_hard} too hard → "
                f"{restriction} (coverage {r.coverage:.0%})")
        lines.append(
            "Completeness still rests on the situation catalog being "
            "exhaustive (cf. paper Sec. VI).")
        return "\n".join(lines)


def _pick_restriction(catalog: SituationCatalog,
                      hard_events: Sequence[HazardousEvent],
                      ) -> Optional[Tuple[str, str]]:
    """The (dimension, value) most implicated in the too-hard events.

    Only values whose dimension would retain at least one other value are
    candidates — the function cannot restrict a dimension away entirely.
    Ties on implication count are broken towards the value whose removal
    costs the least operating coverage: restricting away 'snow' (20 % of
    time) beats restricting away 'urban' (70 %) when both appear in every
    hard event.
    """
    votes: Counter = Counter()
    for event in hard_events:
        for name, value in event.situation.assignment:
            dimension = next(d for d in catalog.dimensions if d.name == name)
            if len(dimension.values) > 1:
                votes[(name, value)] += 1
    if not votes:
        return None

    def coverage_loss(candidate: Tuple[str, str]) -> float:
        name, value = candidate
        dimension = next(d for d in catalog.dimensions if d.name == name)
        if dimension.fractions is not None:
            return dimension.fraction_of(value)
        return 1.0 / len(dimension.values)

    return min(votes, key=lambda cand: (-votes[cand], coverage_loss(cand),
                                        cand))


def run_iterative_hara(functions: Sequence[VehicleFunction],
                       catalog: SituationCatalog,
                       model: RatingModel,
                       assessor: DifficultyAssessor,
                       *, max_rounds: int = 20) -> IterativeHaraResult:
    """The elicit → assess → refine loop of [12].

    Coverage is tracked as the product of the operating-time fractions of
    the values retained at each restriction (requires fraction-annotated
    dimensions).  Raises if a round finds hard events but no legal
    restriction remains — the method's dead end: the feature cannot be
    refined into feasibility.
    """
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    rounds: List[IterationRound] = []
    current = catalog
    coverage = 1.0
    study = run_hara(functions, current, model)
    for round_index in range(1, max_rounds + 1):
        hard = [event for event in study if assessor(event)]
        if not hard:
            rounds.append(IterationRound(
                round_index=round_index,
                situations=current.count(),
                hazardous_events=len(study),
                too_hard=0,
                restriction=None,
                coverage=coverage,
            ))
            return IterativeHaraResult(
                rounds=tuple(rounds), final_study=study,
                final_catalog=current, converged=True,
                final_coverage=coverage)
        restriction = _pick_restriction(current, hard)
        if restriction is None:
            rounds.append(IterationRound(
                round_index=round_index,
                situations=current.count(),
                hazardous_events=len(study),
                too_hard=len(hard),
                restriction=None,
                coverage=coverage,
            ))
            return IterativeHaraResult(
                rounds=tuple(rounds), final_study=study,
                final_catalog=current, converged=False,
                final_coverage=coverage)
        dimension_name, dropped_value = restriction
        dimension = next(d for d in current.dimensions
                         if d.name == dimension_name)
        kept = [value for value in dimension.values if value != dropped_value]
        if dimension.fractions is not None:
            kept_fraction = sum(dimension.fraction_of(v) for v in kept)
            coverage *= kept_fraction
        rounds.append(IterationRound(
            round_index=round_index,
            situations=current.count(),
            hazardous_events=len(study),
            too_hard=len(hard),
            restriction=restriction,
            coverage=coverage,
        ))
        current = current.restricted({dimension_name: kept})
        study = run_hara(functions, current, model)
    return IterativeHaraResult(
        rounds=tuple(rounds), final_study=study, final_catalog=current,
        converged=False, final_coverage=coverage)
