"""ASIL decomposition and inheritance — including where they break.

Implements the ISO 26262-9 rules the paper's Sec. V interrogates:

* **Decomposition** (ISO 26262-9 §5): a requirement at one ASIL may be
  split over *sufficiently independent* redundant elements at lower
  ASILs, per the standard's permitted schemes (D→C+A, D→B+B, D→D+QM, …).
* **Inheritance**: every requirement refined from a safety goal inherits
  the goal's ASIL, regardless of how many elements end up contributing.

The paper's argument is that inheritance carries an *implicit* assumption
— "the total complexity of the design contributing to one safety goal is
limited" — which ADS architectures violate.
:func:`inheritance_effective_rate` quantifies the breakdown: with ``n``
elements each individually meeting the rate band of the inherited ASIL,
the composed vehicle-level violation rate is ``n`` times the band edge,
and for large ``n`` the actually-achieved level is far below the claimed
one.  Benchmark E9 sweeps ``n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .asil import Asil, asil_rate_band, frequency_to_asil_band

__all__ = [
    "DECOMPOSITION_SCHEMES",
    "valid_decompositions",
    "is_valid_decomposition",
    "DecompositionError",
    "decompose",
    "DecomposedRequirement",
    "inheritance_effective_rate",
    "InheritanceAnalysis",
    "analyse_inheritance",
]


class DecompositionError(ValueError):
    """Raised for decompositions the standard does not permit."""


# ISO 26262-9:2018 Figure 2 — the permitted decomposition schemes.
DECOMPOSITION_SCHEMES: Dict[Asil, Tuple[Tuple[Asil, Asil], ...]] = {
    Asil.D: ((Asil.C, Asil.A), (Asil.B, Asil.B), (Asil.D, Asil.QM)),
    Asil.C: ((Asil.B, Asil.A), (Asil.C, Asil.QM)),
    Asil.B: ((Asil.A, Asil.A), (Asil.B, Asil.QM)),
    Asil.A: ((Asil.A, Asil.QM),),
    Asil.QM: (),
}


def valid_decompositions(level: Asil) -> Tuple[Tuple[Asil, Asil], ...]:
    """The permitted two-way splits of a requirement at ``level``."""
    return DECOMPOSITION_SCHEMES[level]


def is_valid_decomposition(level: Asil, parts: Sequence[Asil]) -> bool:
    """Whether a two-way split is one of the standard's schemes.

    Order-insensitive; only two-way splits are defined by the standard
    (deeper splits are applied recursively).
    """
    if len(parts) != 2:
        return False
    pair = tuple(sorted(parts, reverse=True))
    return any(tuple(sorted(scheme, reverse=True)) == pair
               for scheme in DECOMPOSITION_SCHEMES[level])


@dataclass(frozen=True)
class DecomposedRequirement:
    """One element requirement produced by decomposition.

    The ``(X)`` notation of the standard — e.g. "ASIL B(D)" — is preserved
    via ``decomposed_from``: the element is developed at ``level`` but the
    original goal's ASIL still governs e.g. confirmation-measure rigour.
    """

    name: str
    level: Asil
    decomposed_from: Asil

    def notation(self) -> str:
        if self.level is Asil.QM:
            return f"QM({self.decomposed_from.name})"
        return f"ASIL {self.level.name}({self.decomposed_from.name})"


def decompose(level: Asil, parts: Sequence[Asil],
              names: Sequence[str]) -> List[DecomposedRequirement]:
    """Apply one decomposition step, validating against the schemes.

    The standard additionally requires the elements to be *sufficiently
    independent*; that is an architectural property this function cannot
    check — callers assert it, and :mod:`repro.assurance` models the
    common-cause consequences when it fails.
    """
    if len(names) != len(parts):
        raise DecompositionError("one name per decomposition part required")
    if not is_valid_decomposition(level, parts):
        allowed = ", ".join(
            f"{a.name}+{b.name}" for a, b in DECOMPOSITION_SCHEMES[level])
        raise DecompositionError(
            f"{'+'.join(p.name for p in parts)} is not a permitted "
            f"decomposition of {level} (allowed: {allowed or 'none'})")
    return [DecomposedRequirement(name, part, level)
            for name, part in zip(names, parts)]


def inheritance_effective_rate(n_elements: int, inherited_level: Asil) -> float:
    """Vehicle-level violation rate when ``n`` inherited elements contribute.

    Each element individually sits at the edge of its inherited level's
    rate band; the contributions are independent failure causes, so rates
    add (series composition).  The result is the paper's Sec. V point:
    "we can still claim ASIL A for the SG, despite having thousands of
    potential contributing ASIL A fault causes".
    """
    if n_elements < 1:
        raise ValueError("need at least one element")
    band = asil_rate_band(inherited_level)
    if math.isinf(band):
        raise ValueError(
            f"{inherited_level} has no numeric rate band to aggregate")
    return n_elements * band


@dataclass(frozen=True)
class InheritanceAnalysis:
    """The claimed-vs-achieved gap for one inheritance scenario."""

    claimed_level: Asil
    n_elements: int
    effective_rate: float
    achieved_level: Asil

    @property
    def is_sound(self) -> bool:
        """Whether the composed rate still honours the claimed level."""
        return self.achieved_level >= self.claimed_level

    def gap_levels(self) -> int:
        """How many integrity levels the claim overstates (0 when sound)."""
        return max(0, int(self.claimed_level) - int(self.achieved_level))


def analyse_inheritance(claimed_level: Asil, n_elements: int) -> InheritanceAnalysis:
    """Quantify whether ASIL inheritance is sound at a given design size."""
    rate = inheritance_effective_rate(n_elements, claimed_level)
    return InheritanceAnalysis(
        claimed_level=claimed_level,
        n_elements=n_elements,
        effective_rate=rate,
        achieved_level=frequency_to_asil_band(rate),
    )
