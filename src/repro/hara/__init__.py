"""ISO 26262:2018 HARA baseline — the method the QRN tailors away.

Implemented faithfully so the paper's critiques (Sec. II-B) and the
quantitative-vs-ASIL comparison (Sec. V) can be demonstrated against a
real implementation rather than a straw man: S/E/C rating classes, the
ASIL determination table, HAZOP hazard derivation, cross-product situation
enumeration, the full study pipeline, and the decomposition/inheritance
rules including their large-design breakdown.
"""

from .asil import (Asil, RiskReductionWaterfall, asil_rate_band,
                   determine_asil, determine_asil_sum_rule,
                   frequency_to_asil_band, risk_reduction_waterfall)
from .controllability import (ControllabilityClass, ads_controllability,
                              controllability_from_probability)
from .decomposition import (DECOMPOSITION_SCHEMES, DecomposedRequirement,
                            DecompositionError, InheritanceAnalysis,
                            analyse_inheritance, decompose,
                            inheritance_effective_rate,
                            is_valid_decomposition, valid_decompositions)
from .exposure import (ExposureClass, exposure_from_fraction,
                       exposure_from_rate_per_hour)
from .hara import HaraStudy, RatingModel, run_hara
from .iterative import (IterationRound, IterativeHaraResult,
                        asil_threshold_assessor, run_iterative_hara)
from .hazard import GuideWord, Hazard, VehicleFunction, derive_hazards
from .hazardous_event import HazardousEvent, IsoSafetyGoal, SecRating
from .situation import (OperationalSituation, SituationCatalog,
                        SituationDimension, standard_dimensions)

__all__ = [
    "Asil", "determine_asil", "determine_asil_sum_rule", "asil_rate_band",
    "frequency_to_asil_band", "RiskReductionWaterfall",
    "risk_reduction_waterfall",
    "ExposureClass", "exposure_from_fraction", "exposure_from_rate_per_hour",
    "ControllabilityClass", "controllability_from_probability",
    "ads_controllability",
    "GuideWord", "VehicleFunction", "Hazard", "derive_hazards",
    "SecRating", "HazardousEvent", "IsoSafetyGoal",
    "SituationDimension", "OperationalSituation", "SituationCatalog",
    "standard_dimensions",
    "RatingModel", "HaraStudy", "run_hara",
    "DECOMPOSITION_SCHEMES", "valid_decompositions", "is_valid_decomposition",
    "DecompositionError", "decompose", "DecomposedRequirement",
    "inheritance_effective_rate", "InheritanceAnalysis", "analyse_inheritance",
    "IterationRound", "IterativeHaraResult", "asil_threshold_assessor",
    "run_iterative_hara",
]
