"""ISO 26262 controllability classes (C-factor).

Controllability rates the ability of the driver (or other persons at risk)
to avoid the harm once the hazardous event occurs.  For an ADS this factor
is structurally problematic — there is no attentive human driver, which is
one of the standard critiques the paper cites ([2], [11], [12] in its
related work): "human passengers would not be ready and able to mitigate a
failure".  :func:`ads_controllability` encodes the resulting convention of
rating ADS hazardous events C3 unless an *independent* mitigation exists.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["ControllabilityClass", "controllability_from_probability",
           "ads_controllability"]


class ControllabilityClass(IntEnum):
    """C0 (controllable in general) to C3 (difficult or uncontrollable)."""

    C0 = 0  #: controllable in general
    C1 = 1  #: simply controllable (>= 99% of drivers)
    C2 = 2  #: normally controllable (>= 90% of drivers)
    C3 = 3  #: difficult to control or uncontrollable (< 90%)

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]

    @property
    def min_control_probability(self) -> float:
        """Lower edge of the avoid-harm probability band for this class."""
        return _PROB_LOWER[self]


_DESCRIPTIONS = {
    ControllabilityClass.C0: "controllable in general",
    ControllabilityClass.C1: "simply controllable (>=99% of average drivers)",
    ControllabilityClass.C2: "normally controllable (>=90% of average drivers)",
    ControllabilityClass.C3: "difficult to control or uncontrollable",
}

_PROB_LOWER = {
    ControllabilityClass.C0: 1.0,
    ControllabilityClass.C1: 0.99,
    ControllabilityClass.C2: 0.90,
    ControllabilityClass.C3: 0.0,
}


def controllability_from_probability(avoid_probability: float) -> ControllabilityClass:
    """Classify from the probability an average driver avoids the harm.

    C1 at ≥ 99 %, C2 at ≥ 90 %, else C3.  C0 is reserved for hazards
    controllable in general (probability exactly 1 with margin), per the
    standard's examples (e.g. unexpected radio volume increase).
    """
    if not (0.0 <= avoid_probability <= 1.0):
        raise ValueError(
            f"avoid probability must be in [0, 1], got {avoid_probability}")
    if avoid_probability >= 1.0:
        return ControllabilityClass.C0
    if avoid_probability >= 0.99:
        return ControllabilityClass.C1
    if avoid_probability >= 0.90:
        return ControllabilityClass.C2
    return ControllabilityClass.C3


def ads_controllability(independent_mitigation: bool = False,
                        mitigation_effectiveness: float = 0.0,
                        ) -> ControllabilityClass:
    """Controllability for an ADS hazardous event (no attentive driver).

    Without an independent mitigation (e.g. a mechanically separate
    emergency braking path, infrastructure interlock) the passengers
    cannot be credited with controlling anything: C3.  With one, the
    mitigation's effectiveness is classified like a driver's avoidance
    probability — but it must be genuinely independent of the failed
    function, which the caller asserts by passing the flag.
    """
    if not independent_mitigation:
        return ControllabilityClass.C3
    return controllability_from_probability(mitigation_effectiveness)
