"""Hazards and HAZOP-style hazard derivation.

ISO 26262 defines a hazard as a "potential source of harm caused by
malfunctioning behaviour of the item".  Conventional practice derives
hazards by applying HAZOP guidewords (IEC 61882) to each vehicle-level
function: *no* braking when requested, *more* steering than commanded,
*unintended* acceleration, and so on.  The paper's Sec. II-B-3 argues this
framing fits driver-assisting functions (whose promise is a well-defined
capability the driver relies on) but not an ADS (whose promise is "drive
safely from A to B") — the baseline is implemented faithfully so the
contrast can be shown, not because it is endorsed for ADS.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence, Tuple

__all__ = ["GuideWord", "VehicleFunction", "Hazard", "derive_hazards"]


class GuideWord(Enum):
    """IEC 61882 guidewords as conventionally specialised for E/E functions."""

    NO = "no"                    #: function not delivered when demanded
    MORE = "more"                #: quantitatively too much
    LESS = "less"                #: quantitatively too little
    REVERSE = "reverse"          #: opposite of the intent
    EARLY = "early"              #: correct but too soon
    LATE = "late"                #: correct but too late
    UNINTENDED = "unintended"    #: delivered without demand

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class VehicleFunction:
    """A vehicle-level function a HAZOP pass iterates over.

    ``applicable_guidewords`` lets a function exclude physically
    meaningless deviations (there is no *reverse* of 'provide ambient
    lighting'); default is all guidewords.
    """

    name: str
    description: str = ""
    applicable_guidewords: Tuple[GuideWord, ...] = tuple(GuideWord)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("function must be named")
        if not self.applicable_guidewords:
            raise ValueError(
                f"function {self.name!r} admits no guidewords — nothing to analyse")


@dataclass(frozen=True)
class Hazard:
    """One malfunctioning behaviour: a (function, guideword) deviation."""

    hazard_id: str
    function: VehicleFunction
    guideword: GuideWord
    statement: str

    def __post_init__(self) -> None:
        if not self.hazard_id:
            raise ValueError("hazard_id must be non-empty")


_STATEMENTS = {
    GuideWord.NO: "{fn} is not delivered when demanded",
    GuideWord.MORE: "{fn} is delivered with excessive magnitude",
    GuideWord.LESS: "{fn} is delivered with insufficient magnitude",
    GuideWord.REVERSE: "{fn} acts opposite to the demand",
    GuideWord.EARLY: "{fn} is delivered before it is demanded",
    GuideWord.LATE: "{fn} is delivered too late after the demand",
    GuideWord.UNINTENDED: "{fn} is delivered although not demanded",
}


def derive_hazards(functions: Sequence[VehicleFunction]) -> List[Hazard]:
    """The HAZOP pass: every function × its applicable guidewords.

    Hazard ids are deterministic (``H-<function>-<guideword>``) so repeated
    derivations are stable across study revisions.
    """
    if not functions:
        raise ValueError("HAZOP needs at least one function")
    names = [f.name for f in functions]
    if len(set(names)) != len(names):
        raise ValueError("duplicate function names")
    hazards: List[Hazard] = []
    for function in functions:
        for guideword in function.applicable_guidewords:
            hazards.append(Hazard(
                hazard_id=f"H-{function.name}-{guideword.value}",
                function=function,
                guideword=guideword,
                statement=_STATEMENTS[guideword].format(fn=function.name),
            ))
    return hazards
