"""Operational situations and their combinatorial enumeration.

ISO 26262's HARA assumes "all relevant situations shall be considered" —
the analysis input is the cross product of situational dimensions (road
type × weather × lighting × traffic × ...).  The paper's Sec. II-B-1
argues this is intractable for an ADS: "the number of situations to
consider is virtually infinite, unless the feature has a very limited
ODD".

This module makes the argument measurable.  A :class:`SituationCatalog`
declares dimensions; :meth:`~SituationCatalog.count` is the product of the
dimension sizes and :meth:`~SituationCatalog.enumerate_situations` yields
them lazily (so benchmarks can demonstrate the explosion without
materialising it).  Benchmark E8 plots HE count against ODD richness —
exponential for the HARA, constant for the QRN's taxonomy leaves.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = ["SituationDimension", "OperationalSituation", "SituationCatalog",
           "standard_dimensions"]


@dataclass(frozen=True)
class SituationDimension:
    """One axis of the operational-situation space.

    ``fractions`` optionally records the operating-time share of each
    value (summing to 1); when present they feed exposure ratings of
    situations via independence (product of the member fractions) — the
    very "globally valid frequencies" assumption Sec. II-B-4 criticises.
    """

    name: str
    values: Tuple[str, ...]
    fractions: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dimension must be named")
        if len(self.values) < 1:
            raise ValueError(f"dimension {self.name!r} needs at least one value")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"dimension {self.name!r} has duplicate values")
        if self.fractions is not None:
            if len(self.fractions) != len(self.values):
                raise ValueError(
                    f"dimension {self.name!r}: {len(self.fractions)} fractions "
                    f"for {len(self.values)} values")
            if any(f < 0 for f in self.fractions):
                raise ValueError(f"dimension {self.name!r}: negative fraction")
            total = sum(self.fractions)
            if not math.isclose(total, 1.0, rel_tol=1e-9):
                raise ValueError(
                    f"dimension {self.name!r}: fractions sum to {total}, not 1")

    def fraction_of(self, value: str) -> float:
        """Operating-time share of one value (requires fractions)."""
        if self.fractions is None:
            raise ValueError(f"dimension {self.name!r} carries no fractions")
        try:
            index = self.values.index(value)
        except ValueError:
            raise KeyError(
                f"{value!r} not in dimension {self.name!r}") from None
        return self.fractions[index]


@dataclass(frozen=True)
class OperationalSituation:
    """One fully specified operational situation (a point in the product)."""

    assignment: Tuple[Tuple[str, str], ...]

    def value(self, dimension: str) -> str:
        for name, value in self.assignment:
            if name == dimension:
                return value
        raise KeyError(f"situation has no dimension {dimension!r}")

    def label(self) -> str:
        return " / ".join(value for _, value in self.assignment)


class SituationCatalog:
    """The cross-product situation space of a conventional HARA."""

    def __init__(self, dimensions: Sequence[SituationDimension]):
        if not dimensions:
            raise ValueError("catalog needs at least one dimension")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ValueError("duplicate dimension names")
        self.dimensions: Tuple[SituationDimension, ...] = tuple(dimensions)

    @property
    def dimension_names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self.dimensions)

    def count(self) -> int:
        """Number of distinct operational situations (the explosion)."""
        product = 1
        for dimension in self.dimensions:
            product *= len(dimension.values)
        return product

    def enumerate_situations(self) -> Iterator[OperationalSituation]:
        """Yield every situation lazily, in deterministic order."""
        names = self.dimension_names
        for combo in itertools.product(*(d.values for d in self.dimensions)):
            yield OperationalSituation(tuple(zip(names, combo)))

    def time_fraction(self, situation: OperationalSituation) -> float:
        """Operating-time share of a situation, assuming independent dims.

        This is precisely the Sec. II-B-4 modelling step the QRN rejects
        for design-time use: real dimension values correlate strongly
        (snow and season, pedestrians and urban roads).  It is provided
        because the HARA baseline needs it; the traffic substrate's
        contextual model shows how far off it can be.
        """
        fraction = 1.0
        for name, value in situation.assignment:
            dimension = self._dimension(name)
            fraction *= dimension.fraction_of(value)
        return fraction

    def restricted(self, keep: Mapping[str, Sequence[str]]) -> "SituationCatalog":
        """An ODD-restricted catalog: only the listed values survive.

        Restriction is the standard lever for making a HARA tractable —
        and the paper's point is that it trades away the feature's scope
        rather than solving the completeness problem.
        """
        dimensions: List[SituationDimension] = []
        for dimension in self.dimensions:
            if dimension.name not in keep:
                dimensions.append(dimension)
                continue
            wanted = list(keep[dimension.name])
            unknown = set(wanted) - set(dimension.values)
            if unknown:
                raise KeyError(
                    f"restriction on {dimension.name!r} references unknown "
                    f"values {sorted(unknown)}")
            if not wanted:
                raise ValueError(
                    f"restriction on {dimension.name!r} keeps no values")
            if dimension.fractions is not None:
                kept = [dimension.fraction_of(v) for v in wanted]
                total = sum(kept)
                fractions: Optional[Tuple[float, ...]] = (
                    tuple(f / total for f in kept) if total > 0 else None)
            else:
                fractions = None
            dimensions.append(SituationDimension(
                dimension.name, tuple(wanted), fractions))
        return SituationCatalog(dimensions)

    def _dimension(self, name: str) -> SituationDimension:
        for dimension in self.dimensions:
            if dimension.name == name:
                return dimension
        raise KeyError(f"unknown dimension {name!r}")


def standard_dimensions(detail: int = 1) -> List[SituationDimension]:
    """A representative situational-dimension set at growing detail levels.

    ``detail`` scales how finely each axis is discretised (1–4); the
    returned catalog's :meth:`~SituationCatalog.count` grows roughly
    exponentially in detail, which is the E8 benchmark's x-axis.  Values
    and fractions are synthetic but shaped like published ODD taxonomies.
    """
    if not (1 <= detail <= 4):
        raise ValueError("detail must be in 1..4")

    def dim(name: str, values: Sequence[Tuple[str, float]], n: int) -> SituationDimension:
        chosen = list(values[:n])
        total = sum(f for _, f in chosen)
        return SituationDimension(
            name,
            tuple(v for v, _ in chosen),
            tuple(f / total for _, f in chosen),
        )

    road = [("urban", 0.4), ("rural", 0.3), ("highway", 0.2),
            ("residential", 0.05), ("parking", 0.03), ("roundabout", 0.01),
            ("tunnel", 0.005), ("bridge", 0.005)]
    weather = [("clear", 0.6), ("rain", 0.2), ("snow", 0.1), ("fog", 0.05),
               ("hail", 0.03), ("strong_wind", 0.02)]
    lighting = [("day", 0.6), ("night", 0.25), ("dusk", 0.1), ("dawn", 0.05)]
    traffic = [("light", 0.4), ("medium", 0.35), ("heavy", 0.2), ("jam", 0.05)]
    surface = [("dry", 0.6), ("wet", 0.25), ("icy", 0.1), ("gravel", 0.05)]
    actors = [("none", 0.5), ("pedestrians", 0.2), ("cyclists", 0.15),
              ("animals", 0.1), ("children_playing", 0.05)]
    speed = [("0-30", 0.3), ("30-50", 0.3), ("50-70", 0.2), ("70-100", 0.15),
             ("100-130", 0.05)]
    geometry = [("straight", 0.5), ("curve", 0.25), ("intersection", 0.15),
                ("merge", 0.1)]

    per_detail = {1: (3, 2, 2, 2), 2: (4, 3, 3, 3), 3: (6, 4, 4, 4),
                  4: (8, 6, 4, 4)}
    n_big, n_mid, n_small, n_tiny = per_detail[detail]
    dimensions = [
        dim("road_type", road, n_big),
        dim("weather", weather, n_mid),
        dim("lighting", lighting, n_small),
        dim("traffic_density", traffic, n_tiny),
    ]
    if detail >= 2:
        dimensions.append(dim("surface", surface, n_mid))
    if detail >= 3:
        dimensions.append(dim("special_actors", actors, n_mid))
        dimensions.append(dim("speed_band", speed, n_small))
    if detail >= 4:
        dimensions.append(dim("geometry", geometry, n_tiny))
    return dimensions
