"""The full ISO 26262:2018 HARA pipeline (the paper's baseline).

Runs the conventional study end to end:

1. HAZOP over the item's vehicle-level functions → hazards;
2. cross with the operational-situation catalog → candidate hazardous
   events;
3. rate each HE (severity / exposure / controllability) via caller-supplied
   rating functions — in a real study this is expert judgement, here it is
   a pluggable model;
4. determine ASILs and emit one qualitative safety goal per HE above QM.

The study object reports the statistics the paper's critique turns on: how
many situations were enumerated, how many HEs were rated, and — crucially
— that the completeness of the result rests on the *assumption* that the
situation catalog was exhaustive (:meth:`HaraStudy.completeness_argument`
can only ever state that assumption, unlike the QRN's machine-checked MECE
certificate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.severity import IsoSeverity
from .asil import Asil
from .controllability import ControllabilityClass
from .exposure import exposure_from_fraction
from .hazard import Hazard, VehicleFunction, derive_hazards
from .hazardous_event import HazardousEvent, IsoSafetyGoal, SecRating
from .situation import OperationalSituation, SituationCatalog

__all__ = ["RatingModel", "HaraStudy", "run_hara"]


RatingFn = Callable[[Hazard, OperationalSituation], Optional[SecRating]]


@dataclass(frozen=True)
class RatingModel:
    """Pluggable stand-in for the expert judgement of a rating workshop.

    ``severity`` and ``controllability`` map (hazard, situation) to their
    classes; ``relevant`` may veto combinations that make no physical
    sense (a braking hazard in a parked situation).  Exposure is derived
    from the catalog's operating-time fractions — the design-time
    hard-coding of exposure that Sec. II-B-2 criticises is thereby
    explicit in the baseline's structure.
    """

    severity: Callable[[Hazard, OperationalSituation], IsoSeverity]
    controllability: Callable[[Hazard, OperationalSituation], ControllabilityClass]
    relevant: Callable[[Hazard, OperationalSituation], bool] = lambda h, s: True


class HaraStudy:
    """The output of a conventional HARA: rated HEs and ISO safety goals."""

    def __init__(self, events: Sequence[HazardousEvent],
                 situations_considered: int,
                 hazards_considered: int):
        self._events: Tuple[HazardousEvent, ...] = tuple(events)
        ids = [e.event_id for e in self._events]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate hazardous-event ids")
        self.situations_considered = situations_considered
        self.hazards_considered = hazards_considered

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[HazardousEvent]:
        return iter(self._events)

    def events_by_asil(self) -> Dict[Asil, List[HazardousEvent]]:
        buckets: Dict[Asil, List[HazardousEvent]] = {level: [] for level in Asil}
        for event in self._events:
            buckets[event.asil].append(event)
        return buckets

    def highest_asil(self) -> Asil:
        if not self._events:
            return Asil.QM
        return max(event.asil for event in self._events)

    def safety_goals(self) -> List[IsoSafetyGoal]:
        """One ASIL-attributed goal per HE above QM.

        Real studies merge HEs sharing a hazard into one goal at the max
        ASIL; we emit per-event goals first and merging is a separate,
        testable step (:meth:`merged_safety_goals`).
        """
        return [
            IsoSafetyGoal(
                goal_id=f"SG-{event.event_id}",
                statement=f"Prevent: {event.hazard.statement} "
                          f"(in {event.situation.label()})",
                asil=event.asil,
                covers_event=event.event_id,
            )
            for event in self._events if event.needs_safety_goal()
        ]

    def merged_safety_goals(self) -> List[IsoSafetyGoal]:
        """One goal per *hazard*, at the maximum ASIL over its events.

        The conventional consolidation: the SG must hold in every
        situation, so it inherits the worst rating.
        """
        worst: Dict[str, HazardousEvent] = {}
        for event in self._events:
            if not event.needs_safety_goal():
                continue
            current = worst.get(event.hazard.hazard_id)
            if current is None or event.asil > current.asil:
                worst[event.hazard.hazard_id] = event
        return [
            IsoSafetyGoal(
                goal_id=f"SG-{hazard_id}",
                statement=f"Prevent: {event.hazard.statement}",
                asil=event.asil,
                covers_event=event.event_id,
            )
            for hazard_id, event in sorted(worst.items())
        ]

    def completeness_argument(self) -> str:
        """The best completeness claim a conventional HARA can make.

        Note the contrast with
        :meth:`repro.core.safety_goals.SafetyGoalSet.completeness_argument`:
        here the load-bearing sentence is an *assumption* about the
        situation catalog, not a checked property.
        """
        return (
            f"HARA considered {self.hazards_considered} hazards x "
            f"{self.situations_considered} operational situations = "
            f"{self.hazards_considered * self.situations_considered} candidate "
            f"combinations, rating {len(self._events)} as relevant hazardous "
            "events.\n"
            "Completeness rests on the ASSUMPTION that the situation catalog "
            "covers all relevant operational situations and the hazard list "
            "all malfunctioning behaviours; neither is machine-checkable "
            "(cf. paper Sec. II-B-1)."
        )


def run_hara(functions: Sequence[VehicleFunction],
             catalog: SituationCatalog,
             model: RatingModel) -> HaraStudy:
    """Execute the conventional HARA pipeline.

    Exposure for each situation comes from the catalog's operating-time
    fractions via :func:`~repro.hara.exposure.exposure_from_fraction`.
    Combinations the model marks irrelevant are dropped (but still counted
    in the considered totals — the effort of dismissing them is part of
    the method's cost).
    """
    hazards = derive_hazards(functions)
    events: List[HazardousEvent] = []
    situations = list(catalog.enumerate_situations())
    for hazard in hazards:
        for index, situation in enumerate(situations):
            if not model.relevant(hazard, situation):
                continue
            severity = model.severity(hazard, situation)
            exposure = exposure_from_fraction(catalog.time_fraction(situation))
            controllability = model.controllability(hazard, situation)
            rating = SecRating(severity, exposure, controllability)
            events.append(HazardousEvent(
                event_id=f"HE-{hazard.hazard_id}-S{index:04d}",
                hazard=hazard,
                situation=situation,
                rating=rating,
            ))
    return HaraStudy(events, situations_considered=len(situations),
                     hazards_considered=len(hazards))
