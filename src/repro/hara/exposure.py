"""ISO 26262 exposure classes (E-factor).

Exposure rates the probability of being in the operational situation in
which a hazard would be dangerous.  Classes E0–E4 follow the standard's
duration-based guidance (ISO 26262-3, Annex B): the fraction of overall
operating time spent in the situation.

The paper's Sec. II-B-2 critique lives here too: for an ADS the exposure is
*not* exogenous — "what situations the ADS will be exposed to will depend
on its decisions in previous situations".  :func:`exposure_from_fraction`
is therefore exactly the kind of design-time hard-coding the QRN avoids;
benchmark E7 shows the same physical situation flipping exposure class as
the tactical policy changes.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["ExposureClass", "exposure_from_fraction", "exposure_from_rate_per_hour"]


class ExposureClass(IntEnum):
    """E0 (incredible) to E4 (high probability)."""

    E0 = 0  #: incredible
    E1 = 1  #: very low probability
    E2 = 2  #: low probability
    E3 = 3  #: medium probability
    E4 = 4  #: high probability

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]

    @property
    def max_time_fraction(self) -> float:
        """Upper edge of the operating-time fraction band for this class."""
        return _FRACTION_UPPER[self]


_DESCRIPTIONS = {
    ExposureClass.E0: "incredible",
    ExposureClass.E1: "very low probability",
    ExposureClass.E2: "low probability (<1% of operating time)",
    ExposureClass.E3: "medium probability (1-10% of operating time)",
    ExposureClass.E4: "high probability (>10% of operating time)",
}

# Duration-based class edges (fraction of operating time), following the
# standard's Annex B informative tables.
_FRACTION_UPPER = {
    ExposureClass.E0: 0.0,
    ExposureClass.E1: 0.001,
    ExposureClass.E2: 0.01,
    ExposureClass.E3: 0.10,
    ExposureClass.E4: 1.0,
}


def exposure_from_fraction(time_fraction: float) -> ExposureClass:
    """Classify exposure from the fraction of operating time in the situation.

    Follows the duration guidance: E1 below 0.1 %, E2 below 1 %, E3 below
    10 %, E4 above.  A strictly zero fraction is E0 (incredible).
    """
    if not (0.0 <= time_fraction <= 1.0):
        raise ValueError(f"time fraction must be in [0, 1], got {time_fraction}")
    if time_fraction == 0.0:
        return ExposureClass.E0
    if time_fraction < _FRACTION_UPPER[ExposureClass.E1]:
        return ExposureClass.E1
    if time_fraction < _FRACTION_UPPER[ExposureClass.E2]:
        return ExposureClass.E2
    if time_fraction < _FRACTION_UPPER[ExposureClass.E3]:
        return ExposureClass.E3
    return ExposureClass.E4


def exposure_from_rate_per_hour(rate_per_hour: float,
                                mean_duration_h: float) -> ExposureClass:
    """Classify exposure from a situation's occurrence rate and duration.

    Converts to an operating-time fraction ``rate × duration`` (occupancy)
    and classifies; occupancy above 1 saturates at E4.
    """
    if rate_per_hour < 0:
        raise ValueError("rate must be >= 0")
    if mean_duration_h <= 0:
        raise ValueError("mean duration must be positive")
    return exposure_from_fraction(min(rate_per_hour * mean_duration_h, 1.0))
