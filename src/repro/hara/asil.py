"""ASIL determination — ISO 26262-3 Table 4 and the Fig. 1 risk model.

The automotive safety integrity level is the standard's discrete risk-
reduction requirement, determined from the S/E/C rating of a hazardous
event.  The full determination table is reproduced verbatim; it also obeys
the well-known closed form ``S + E + C`` (with S0/E0/C0 short-circuiting to
QM): sum 10 → D, 9 → C, 8 → B, 7 → A, below → QM.  Both are implemented
and cross-checked in tests.

:func:`risk_reduction_waterfall` implements the Fig. 1 picture: starting
from the raw frequency of the hazardous situation, exposure limitation and
controllability each buy decades of risk reduction; whatever remains to
reach the severity-dependent acceptable frequency is the reduction the E/E
system must provide — the quantitative reading of an ASIL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Tuple

from ..core.severity import IsoSeverity
from .controllability import ControllabilityClass
from .exposure import ExposureClass

__all__ = [
    "Asil",
    "determine_asil",
    "determine_asil_sum_rule",
    "asil_rate_band",
    "frequency_to_asil_band",
    "RiskReductionWaterfall",
    "risk_reduction_waterfall",
]


class Asil(IntEnum):
    """QM plus ASIL A–D, ordered by required risk reduction."""

    QM = 0
    A = 1
    B = 2
    C = 3
    D = 4

    def __str__(self) -> str:
        return "QM" if self is Asil.QM else f"ASIL {self.name}"


# ISO 26262-3:2018 Table 4, keyed (S, E, C).  S0, E0 and C0 rows are QM by
# the standard's text rather than the table; handled in determine_asil.
_TABLE: Dict[Tuple[int, int, int], Asil] = {}
for _s in (1, 2, 3):
    for _e in (1, 2, 3, 4):
        for _c in (1, 2, 3):
            _total = _s + _e + _c
            if _total >= 10:
                _level = Asil.D
            elif _total == 9:
                _level = Asil.C
            elif _total == 8:
                _level = Asil.B
            elif _total == 7:
                _level = Asil.A
            else:
                _level = Asil.QM
            _TABLE[(_s, _e, _c)] = _level

# Spot-anchor the table against the standard's published corners.
assert _TABLE[(3, 4, 3)] is Asil.D
assert _TABLE[(3, 4, 2)] is Asil.C
assert _TABLE[(3, 3, 3)] is Asil.C
assert _TABLE[(1, 4, 3)] is Asil.B
assert _TABLE[(2, 2, 2)] is Asil.QM
assert _TABLE[(1, 1, 1)] is Asil.QM


def determine_asil(severity: IsoSeverity, exposure: ExposureClass,
                   controllability: ControllabilityClass) -> Asil:
    """ISO 26262-3 Table 4 lookup, with S0/E0/C0 short-circuiting to QM."""
    if severity is IsoSeverity.S0:
        return Asil.QM
    if exposure is ExposureClass.E0:
        return Asil.QM
    if controllability is ControllabilityClass.C0:
        return Asil.QM
    return _TABLE[(int(severity), int(exposure), int(controllability))]


def determine_asil_sum_rule(severity: IsoSeverity, exposure: ExposureClass,
                            controllability: ControllabilityClass) -> Asil:
    """The closed-form ``S + E + C`` rule equivalent to Table 4.

    Kept separate so tests can prove the equivalence over the full domain
    rather than trusting either implementation.
    """
    if (severity is IsoSeverity.S0 or exposure is ExposureClass.E0
            or controllability is ControllabilityClass.C0):
        return Asil.QM
    total = int(severity) + int(exposure) + int(controllability)
    if total >= 10:
        return Asil.D
    if total == 9:
        return Asil.C
    if total == 8:
        return Asil.B
    if total == 7:
        return Asil.A
    return Asil.QM


# Violation-rate bands per integrity level, in events per hour.  The D and
# C edges follow the standard's random-hardware-fault target values (1e-8
# and 1e-7 per hour); the remaining edges continue the decade ladder as a
# documented convention — the standard assigns no numeric target to ASIL A
# or QM, which is itself part of the paper's Sec. V argument.
_RATE_BAND_UPPER: Dict[Asil, float] = {
    Asil.D: 1e-8,
    Asil.C: 1e-7,
    Asil.B: 1e-6,
    Asil.A: 1e-5,
    Asil.QM: math.inf,
}


def asil_rate_band(level: Asil) -> float:
    """Upper edge of the violation-rate band conventionally tied to a level."""
    return _RATE_BAND_UPPER[level]


def frequency_to_asil_band(rate_per_hour: float) -> Asil:
    """The integrity level whose band a violation rate falls into.

    Used by the Sec. V comparison: a redundant channel allowed 3e-2
    violations per hour maps to QM, yet three such channels compose to an
    ASIL-D-grade vehicle rate.
    """
    if rate_per_hour < 0 or not math.isfinite(rate_per_hour):
        raise ValueError(f"rate must be finite and >= 0, got {rate_per_hour}")
    for level in (Asil.D, Asil.C, Asil.B, Asil.A):
        if rate_per_hour <= _RATE_BAND_UPPER[level]:
            return level
    return Asil.QM


@dataclass(frozen=True)
class RiskReductionWaterfall:
    """The Fig. 1 decomposition of required risk reduction (in decades).

    ``raw_frequency`` is how often the hazardous situation arises;
    ``exposure_reduction`` and ``controllability_reduction`` are the
    decades bought by situation rarity and by human/mitigation action;
    ``required_ee_reduction`` is what remains for the E/E system — the
    quantitative meaning of the assigned ASIL.
    """

    severity: IsoSeverity
    acceptable_frequency: float
    raw_frequency: float
    exposure_reduction: float
    controllability_reduction: float
    required_ee_reduction: float
    asil: Asil

    def total_reduction_needed(self) -> float:
        """Decades between the raw frequency and the acceptable one."""
        return max(0.0, math.log10(self.raw_frequency / self.acceptable_frequency))


# Severity-dependent acceptable accident frequencies (events/hour) for the
# Fig. 1 waterfall.  Synthetic decade ladder (the figure is qualitative).
_ACCEPTABLE_BY_SEVERITY: Dict[IsoSeverity, float] = {
    IsoSeverity.S0: 1e-4,
    IsoSeverity.S1: 1e-6,
    IsoSeverity.S2: 1e-7,
    IsoSeverity.S3: 1e-8,
}

# Decades of reduction credited per exposure / controllability class: each
# step away from the worst class buys one decade, matching the one-level-
# per-step structure of Table 4.
_EXPOSURE_DECADES: Dict[ExposureClass, float] = {
    ExposureClass.E0: math.inf,
    ExposureClass.E1: 3.0,
    ExposureClass.E2: 2.0,
    ExposureClass.E3: 1.0,
    ExposureClass.E4: 0.0,
}

_CONTROLLABILITY_DECADES: Dict[ControllabilityClass, float] = {
    ControllabilityClass.C0: math.inf,
    ControllabilityClass.C1: 2.0,
    ControllabilityClass.C2: 1.0,
    ControllabilityClass.C3: 0.0,
}


def risk_reduction_waterfall(severity: IsoSeverity,
                             exposure: ExposureClass,
                             controllability: ControllabilityClass,
                             raw_frequency_per_hour: float = 1e-2,
                             ) -> RiskReductionWaterfall:
    """Quantify the Fig. 1 waterfall for one hazardous event.

    Starting from the raw situation frequency, subtract the decades bought
    by exposure limitation and controllability; the remaining decades to
    the severity's acceptable frequency must come from the E/E system.
    The returned ``asil`` is the Table 4 determination for cross-reference
    — benchmark E1 shows the required-decades figure and the table level
    move together.
    """
    if raw_frequency_per_hour <= 0:
        raise ValueError("raw frequency must be positive")
    acceptable = _ACCEPTABLE_BY_SEVERITY[severity]
    needed = max(0.0, math.log10(raw_frequency_per_hour / acceptable))
    exposure_cut = min(_EXPOSURE_DECADES[exposure], needed)
    controllability_cut = min(_CONTROLLABILITY_DECADES[controllability],
                              needed - exposure_cut)
    remaining = needed - exposure_cut - controllability_cut
    return RiskReductionWaterfall(
        severity=severity,
        acceptable_frequency=acceptable,
        raw_frequency=raw_frequency_per_hour,
        exposure_reduction=exposure_cut,
        controllability_reduction=controllability_cut,
        required_ee_reduction=remaining,
        asil=determine_asil(severity, exposure, controllability),
    )
