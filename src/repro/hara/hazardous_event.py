"""Hazardous events: hazard × operational situation, S/E/C rated.

The ISO 26262 HARA's unit of analysis — "a risk assessment is made for
each combination of hazard and operational situation, called hazardous
event" — with its rating and the qualitative safety goal it produces.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.severity import IsoSeverity
from .asil import Asil, determine_asil
from .controllability import ControllabilityClass
from .exposure import ExposureClass
from .hazard import Hazard
from .situation import OperationalSituation

__all__ = ["SecRating", "HazardousEvent", "IsoSafetyGoal"]


@dataclass(frozen=True)
class SecRating:
    """A severity / exposure / controllability triple."""

    severity: IsoSeverity
    exposure: ExposureClass
    controllability: ControllabilityClass

    @property
    def asil(self) -> Asil:
        return determine_asil(self.severity, self.exposure, self.controllability)


@dataclass(frozen=True)
class HazardousEvent:
    """One rated hazard-in-situation combination."""

    event_id: str
    hazard: Hazard
    situation: OperationalSituation
    rating: SecRating

    def __post_init__(self) -> None:
        if not self.event_id:
            raise ValueError("event_id must be non-empty")

    @property
    def asil(self) -> Asil:
        return self.rating.asil

    def needs_safety_goal(self) -> bool:
        """Only HEs rated above QM require an SG (and an ASIL attribute)."""
        return self.asil is not Asil.QM

    def describe(self) -> str:
        return (f"{self.event_id}: {self.hazard.statement} | "
                f"{self.situation.label()} | "
                f"S{int(self.rating.severity)}/E{int(self.rating.exposure)}/"
                f"C{int(self.rating.controllability)} → {self.asil}")


@dataclass(frozen=True)
class IsoSafetyGoal:
    """A conventional ISO 26262 safety goal with a discrete ASIL attribute.

    Contrast with :class:`repro.core.safety_goals.SafetyGoal`: the
    integrity attribute here is a level, not a frequency, and the goal
    text refers to a hazard, not an incident type.
    """

    goal_id: str
    statement: str
    asil: Asil
    covers_event: str
    """The hazardous-event id this SG addresses."""

    def __post_init__(self) -> None:
        if not self.goal_id:
            raise ValueError("goal_id must be non-empty")
        if self.asil is Asil.QM:
            raise ValueError(
                f"goal {self.goal_id}: QM-rated events carry no safety goal")

    def render(self) -> str:
        return f"{self.goal_id} [{self.asil}]: {self.statement}"
